"""Abstract syntax tree for MiniC.

The AST is deliberately small: every value is a machine word, and the only
aggregate is the global (or local) array.  Function pointers are words
holding a function id; calling through a variable is an indirect call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    line: int = 0


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """``name[index]`` -- array element read."""

    name: str = ""
    index: Optional[Expr] = None


@dataclass
class UnOp(Expr):
    op: str = ""          # one of: - ! ~
    operand: Optional[Expr] = None


@dataclass
class BinOp(Expr):
    op: str = ""          # + - * / % & | ^ << >> < <= > >= == != && ||
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Call(Expr):
    """``callee(args...)``.

    The parser cannot tell direct from indirect calls; semantic analysis
    sets ``indirect`` when ``callee`` names a variable rather than a
    function.
    """

    callee: str = ""
    args: List[Expr] = field(default_factory=list)
    indirect: bool = False


@dataclass
class FuncRef(Expr):
    """``&name`` -- the address (function id) of a procedure."""

    name: str = ""


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class LocalVar(Stmt):
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class LocalArray(Stmt):
    name: str = ""
    size: int = 0


@dataclass
class Assign(Stmt):
    name: str = ""
    value: Optional[Expr] = None


@dataclass
class ArrayAssign(Stmt):
    name: str = ""
    index: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Block] = None
    orelse: Optional[Stmt] = None   # Block or nested If (else-if chain)


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Block] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None     # Assign or LocalVar or None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None     # Assign or None
    body: Optional[Block] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Print(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Top-level declarations
# --------------------------------------------------------------------------

@dataclass
class GlobalVar(Node):
    name: str = ""
    init: int = 0


@dataclass
class ArrayDecl(Node):
    name: str = ""
    size: int = 0


@dataclass
class ExternFunc(Node):
    """``extern func name(arity);`` -- a procedure defined in another module."""

    name: str = ""
    arity: int = 0


@dataclass
class FuncDecl(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class Module(Node):
    """One compilation unit."""

    name: str = "module"
    globals: List[GlobalVar] = field(default_factory=list)
    arrays: List[ArrayDecl] = field(default_factory=list)
    externs: List[ExternFunc] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)
