"""Lexer for MiniC, the paper-reproduction source language.

MiniC is a small C-like language: one data type (the machine word),
global scalars and arrays, procedures with value parameters, recursion,
and function pointers (``&name`` / calls through variables).  It is rich
enough to express the paper's 13 benchmark programs while keeping the
compiler focused on the register-allocation work the paper studies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.frontend.errors import LexError


class TokKind(enum.Enum):
    INT = "int"
    IDENT = "ident"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "var", "array", "func", "extern", "if", "else", "while", "for",
        "return", "print", "break", "continue",
    }
)

# Longest-match punctuation, sorted by length at build time.
PUNCTUATION = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ",", ";",
)


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    value: int
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind.value}, {self.text!r} @{self.line}:{self.col})"


_ESCAPES = {"n": 10, "t": 9, "0": 0, "'": 39, "\\": 92, '"': 34, "r": 13}


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list ending with an EOF token."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def err(msg: str) -> LexError:
        return LexError(msg, line, col)

    while i < n:
        c = source[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "*":
            i += 2
            col += 2
            while i + 1 < n and not (source[i] == "*" and source[i + 1] == "/"):
                if source[i] == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
                i += 1
            if i + 1 >= n:
                raise err("unterminated block comment")
            i += 2
            col += 2
            continue
        start_col = col
        if c.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            text = source[i:j]
            yield Token(TokKind.INT, text, int(text), line, start_col)
            col += j - i
            i = j
            continue
        if c == "'":
            # character literal -> integer value
            if i + 1 >= n:
                raise err("unterminated character literal")
            if source[i + 1] == "\\":
                if i + 3 >= n or source[i + 3] != "'":
                    raise err("malformed character escape")
                esc = source[i + 2]
                if esc not in _ESCAPES:
                    raise err(f"unknown escape '\\{esc}'")
                yield Token(TokKind.INT, source[i:i + 4], _ESCAPES[esc], line, start_col)
                i += 4
                col += 4
            else:
                if i + 2 >= n or source[i + 2] != "'":
                    raise err("unterminated character literal")
                yield Token(TokKind.INT, source[i:i + 3], ord(source[i + 1]), line, start_col)
                i += 3
                col += 3
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            yield Token(kind, text, 0, line, start_col)
            col += j - i
            i = j
            continue
        matched = None
        for p in PUNCTUATION:
            if source.startswith(p, i):
                matched = p
                break
        if matched is None:
            raise err(f"unexpected character {c!r}")
        yield Token(TokKind.PUNCT, matched, 0, line, start_col)
        i += len(matched)
        col += len(matched)
    yield Token(TokKind.EOF, "", 0, line, col)
