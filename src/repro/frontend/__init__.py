"""MiniC front end: lexer, parser, AST, semantic analysis."""

from repro.frontend.errors import (
    CompileError,
    LexError,
    LinkError,
    ParseError,
    SemanticError,
)
from repro.frontend.lexer import Token, TokKind, tokenize
from repro.frontend.parser import parse
from repro.frontend.semantics import FunctionInfo, ModuleInfo, analyze

__all__ = [
    "CompileError",
    "LexError",
    "LinkError",
    "ParseError",
    "SemanticError",
    "Token",
    "TokKind",
    "tokenize",
    "parse",
    "FunctionInfo",
    "ModuleInfo",
    "analyze",
]
