"""Recursive-descent parser for MiniC.

Grammar (EBNF):

    module      := item*
    item        := "var" IDENT ("=" ("-")? INT)? ";"
                 | "array" IDENT "[" INT "]" ";"
                 | "extern" "func" IDENT "(" INT ")" ";"
                 | "func" IDENT "(" params? ")" block
    params      := IDENT ("," IDENT)*
    block       := "{" stmt* "}"
    stmt        := "var" IDENT ("=" expr)? ";"
                 | "array" IDENT "[" INT "]" ";"
                 | "if" "(" expr ")" block ("else" (block | ifstmt))?
                 | "while" "(" expr ")" block
                 | "for" "(" simple? ";" expr? ";" simple? ")" block
                 | "return" expr? ";"
                 | "print" expr ";"
                 | "break" ";" | "continue" ";"
                 | simple ";"
    simple      := IDENT "=" expr
                 | IDENT "[" expr "]" "=" expr
                 | expr                       (call statements)
    expr        := binary expression with C precedence, "&&"/"||" lowest
    primary     := INT | IDENT | IDENT "(" args? ")" | IDENT "[" expr "]"
                 | "&" IDENT | "(" expr ")" | ("-"|"!"|"~") primary
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import ParseError
from repro.frontend.lexer import Token, TokKind, tokenize

# precedence table: higher binds tighter
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self._toks = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._toks[self._pos]

    def _peek(self, ahead: int = 1) -> Token:
        return self._toks[min(self._pos + ahead, len(self._toks) - 1)]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind is not TokKind.EOF:
            self._pos += 1
        return tok

    def _error(self, msg: str) -> ParseError:
        tok = self._cur
        return ParseError(msg, tok.line, tok.col)

    def _check(self, text: str) -> bool:
        tok = self._cur
        return tok.kind in (TokKind.PUNCT, TokKind.KEYWORD) and tok.text == text

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise self._error(f"expected {text!r}, found {self._cur.text!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._cur.kind is not TokKind.IDENT:
            raise self._error(f"expected identifier, found {self._cur.text!r}")
        return self._advance()

    def _expect_int(self) -> Token:
        if self._cur.kind is not TokKind.INT:
            raise self._error(f"expected integer, found {self._cur.text!r}")
        return self._advance()

    # -- top level -----------------------------------------------------------

    def parse_module(self, name: str = "module") -> ast.Module:
        mod = ast.Module(name=name)
        while self._cur.kind is not TokKind.EOF:
            if self._check("var"):
                mod.globals.append(self._global_var())
            elif self._check("array"):
                mod.arrays.append(self._array_decl())
            elif self._check("extern"):
                mod.externs.append(self._extern())
            elif self._check("func"):
                mod.functions.append(self._func())
            else:
                raise self._error(
                    f"expected a declaration, found {self._cur.text!r}"
                )
        return mod

    def _global_var(self) -> ast.GlobalVar:
        line = self._expect("var").line
        name = self._expect_ident().text
        init = 0
        if self._accept("="):
            neg = self._accept("-")
            init = self._expect_int().value
            if neg:
                init = -init
        self._expect(";")
        return ast.GlobalVar(line=line, name=name, init=init)

    def _array_decl(self) -> ast.ArrayDecl:
        line = self._expect("array").line
        name = self._expect_ident().text
        self._expect("[")
        size = self._expect_int().value
        self._expect("]")
        self._expect(";")
        return ast.ArrayDecl(line=line, name=name, size=size)

    def _extern(self) -> ast.ExternFunc:
        line = self._expect("extern").line
        self._expect("func")
        name = self._expect_ident().text
        self._expect("(")
        arity = self._expect_int().value
        self._expect(")")
        self._expect(";")
        return ast.ExternFunc(line=line, name=name, arity=arity)

    def _func(self) -> ast.FuncDecl:
        line = self._expect("func").line
        name = self._expect_ident().text
        self._expect("(")
        params: List[str] = []
        if not self._check(")"):
            params.append(self._expect_ident().text)
            while self._accept(","):
                params.append(self._expect_ident().text)
        self._expect(")")
        body = self._block()
        return ast.FuncDecl(line=line, name=name, params=params, body=body)

    # -- statements ----------------------------------------------------------

    def _block(self) -> ast.Block:
        line = self._expect("{").line
        stmts: List[ast.Stmt] = []
        while not self._check("}"):
            if self._cur.kind is TokKind.EOF:
                raise self._error("unterminated block")
            stmts.append(self._stmt())
        self._expect("}")
        return ast.Block(line=line, stmts=stmts)

    def _stmt(self) -> ast.Stmt:
        if self._check("var"):
            line = self._advance().line
            name = self._expect_ident().text
            init = None
            if self._accept("="):
                init = self._expr()
            self._expect(";")
            return ast.LocalVar(line=line, name=name, init=init)
        if self._check("array"):
            line = self._advance().line
            name = self._expect_ident().text
            self._expect("[")
            size = self._expect_int().value
            self._expect("]")
            self._expect(";")
            return ast.LocalArray(line=line, name=name, size=size)
        if self._check("if"):
            return self._if_stmt()
        if self._check("while"):
            line = self._advance().line
            self._expect("(")
            cond = self._expr()
            self._expect(")")
            body = self._block()
            return ast.While(line=line, cond=cond, body=body)
        if self._check("for"):
            return self._for_stmt()
        if self._check("return"):
            line = self._advance().line
            value = None
            if not self._check(";"):
                value = self._expr()
            self._expect(";")
            return ast.Return(line=line, value=value)
        if self._check("print"):
            line = self._advance().line
            value = self._expr()
            self._expect(";")
            return ast.Print(line=line, value=value)
        if self._check("break"):
            line = self._advance().line
            self._expect(";")
            return ast.Break(line=line)
        if self._check("continue"):
            line = self._advance().line
            self._expect(";")
            return ast.Continue(line=line)
        stmt = self._simple_stmt()
        self._expect(";")
        return stmt

    def _if_stmt(self) -> ast.If:
        line = self._expect("if").line
        self._expect("(")
        cond = self._expr()
        self._expect(")")
        then = self._block()
        orelse: Optional[ast.Stmt] = None
        if self._accept("else"):
            if self._check("if"):
                orelse = self._if_stmt()
            else:
                orelse = self._block()
        return ast.If(line=line, cond=cond, then=then, orelse=orelse)

    def _for_stmt(self) -> ast.For:
        line = self._expect("for").line
        self._expect("(")
        init: Optional[ast.Stmt] = None
        if not self._check(";"):
            if self._check("var"):
                self._advance()
                name = self._expect_ident().text
                self._expect("=")
                init = ast.LocalVar(line=line, name=name, init=self._expr())
            else:
                init = self._simple_stmt()
        self._expect(";")
        cond: Optional[ast.Expr] = None
        if not self._check(";"):
            cond = self._expr()
        self._expect(";")
        step: Optional[ast.Stmt] = None
        if not self._check(")"):
            step = self._simple_stmt()
        self._expect(")")
        body = self._block()
        return ast.For(line=line, init=init, cond=cond, step=step, body=body)

    def _simple_stmt(self) -> ast.Stmt:
        """Assignment, array assignment, or bare (call) expression."""
        if self._cur.kind is TokKind.IDENT:
            nxt = self._peek()
            if nxt.kind is TokKind.PUNCT and nxt.text == "=":
                tok = self._advance()
                self._advance()  # '='
                return ast.Assign(line=tok.line, name=tok.text, value=self._expr())
            if nxt.kind is TokKind.PUNCT and nxt.text == "[":
                # Could be `a[i] = e` or the expression `a[i]` used as a
                # statement; look for the '=' after the matching ']'.
                save = self._pos
                tok = self._advance()
                self._advance()  # '['
                index = self._expr()
                self._expect("]")
                if self._accept("="):
                    return ast.ArrayAssign(
                        line=tok.line, name=tok.text, index=index,
                        value=self._expr(),
                    )
                self._pos = save  # bare expression: re-parse as expr
        expr = self._expr()
        return ast.ExprStmt(line=expr.line, expr=expr)

    # -- expressions ---------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._binary(1)

    def _binary(self, min_prec: int) -> ast.Expr:
        left = self._unary()
        while True:
            tok = self._cur
            if tok.kind is not TokKind.PUNCT:
                return left
            prec = _PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                return left
            self._advance()
            right = self._binary(prec + 1)
            left = ast.BinOp(line=tok.line, op=tok.text, left=left, right=right)

    def _unary(self) -> ast.Expr:
        tok = self._cur
        if tok.kind is TokKind.PUNCT and tok.text in ("-", "!", "~"):
            self._advance()
            operand = self._unary()
            return ast.UnOp(line=tok.line, op=tok.text, operand=operand)
        if tok.kind is TokKind.PUNCT and tok.text == "&":
            self._advance()
            name = self._expect_ident()
            return ast.FuncRef(line=tok.line, name=name.text)
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self._cur
        if tok.kind is TokKind.INT:
            self._advance()
            return ast.IntLit(line=tok.line, value=tok.value)
        if tok.kind is TokKind.IDENT:
            self._advance()
            if self._accept("("):
                args: List[ast.Expr] = []
                if not self._check(")"):
                    args.append(self._expr())
                    while self._accept(","):
                        args.append(self._expr())
                self._expect(")")
                return ast.Call(line=tok.line, callee=tok.text, args=args)
            if self._accept("["):
                index = self._expr()
                self._expect("]")
                return ast.Index(line=tok.line, name=tok.text, index=index)
            return ast.VarRef(line=tok.line, name=tok.text)
        if self._accept("("):
            expr = self._expr()
            self._expect(")")
            return expr
        raise self._error(f"expected an expression, found {tok.text!r}")


def parse(source: str, name: str = "module") -> ast.Module:
    """Parse MiniC ``source`` into a :class:`~repro.frontend.ast_nodes.Module`."""
    return Parser(tokenize(source)).parse_module(name)
