"""Deterministic fault injection -- the reproduction's chaos harness.

A :class:`FaultPlan` is an explicit, seedable list of faults to inject
at named *sites* threaded through the toolchain (planning, coloring,
shrink-wrapping, codegen, cache lookups, pool workers, JIT
translation, suite workers, and the on-disk artifact store's reads,
writes and lock acquisitions).  Components consult the harness with

    faults.check(SITE_COLORING, fn.name)

which is a no-op unless a plan is installed and an armed spec matches;
matching specs fire deterministically, so a test can assert both *that*
a fault fired and *how* the system recovered.  Four fault kinds model
the failure modes the resilience layer must absorb:

``raise``
    the site raises :class:`InjectedFault` (a crashed stage);
``hang``
    the site sleeps ``hang_seconds`` (a stuck stage or worker -- pair
    with the watchdog timeouts to exercise the timeout/retry path);
``corrupt``
    a cache site bit-rots a stored entry (consumed via
    :func:`corrupts`; the checksummed caches must detect and retry);
``kill``
    a pool *worker process* dies with ``os._exit`` (the parent sees a
    ``BrokenProcessPool``).  Outside a worker process the kind is a
    no-op: there is no worker to kill, and exiting the host process
    would defeat the point of injecting recoverable faults.

Faults are consumed when they fire (``count`` decrements under a
lock), so a transient failure followed by a clean retry is the default
story.  Plans pickle cleanly -- :func:`repro.benchsuite.harness.run_suite`
ships them into worker processes -- but each pickled copy carries its
own counters; cross-process specs should therefore pin a ``match`` key
so the same cell fires on every attempt regardless of which copy it
hits.

The module imports nothing from the rest of ``repro`` so that any
layer, however deep, may call into it without import cycles.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "ALL_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active",
    "check",
    "clear",
    "corrupts",
    "current_plan",
    "install",
    "worker_context",
    "SITE_CACHE_CODEGEN",
    "SITE_CACHE_PLAN",
    "SITE_CODEGEN",
    "SITE_COLORING",
    "SITE_JIT",
    "SITE_JIT3",
    "SITE_PLAN",
    "SITE_SERVICE_DEADLINE",
    "SITE_SERVICE_QUEUE",
    "SITE_SHRINKWRAP",
    "SITE_STORE_LOCK",
    "SITE_STORE_READ",
    "SITE_STORE_SCRUB",
    "SITE_STORE_WRITE",
    "SITE_SUITE_WORKER",
    "SITE_WORKER",
]

# -- site registry -----------------------------------------------------------

SITE_PLAN = "plan"                   # engine/core: per-procedure planning
SITE_CODEGEN = "codegen"             # engine/core: per-procedure codegen
SITE_CACHE_PLAN = "cache-plan"       # engine/core: plan cache entries
SITE_CACHE_CODEGEN = "cache-codegen"  # engine/core: codegen cache entries
SITE_COLORING = "coloring"           # regalloc/coloring: allocate_function
SITE_SHRINKWRAP = "shrinkwrap"       # shrinkwrap/placement: shrink_wrap
SITE_WORKER = "worker"               # engine/scheduler: planner pool task
SITE_JIT = "jit"                     # sim/jit: superblock translation
SITE_JIT3 = "jit3"                   # sim/jit: tier-3 trace translation
#                                      (keys: "translate"/"inline"/"link")
SITE_SUITE_WORKER = "suite-worker"   # benchsuite/harness: suite pool cell
SITE_STORE_READ = "store-read"       # store: entry payload read (corrupt)
SITE_STORE_WRITE = "store-write"     # store: entry write (raise = I/O error;
#                                      key "publish:<ns>" = between temp
#                                      write and rename -- the kill window)
SITE_STORE_LOCK = "store-lock"       # store: advisory-lock acquisition
SITE_STORE_SCRUB = "store-scrub"     # store: scrub per-entry re-verify
SITE_SERVICE_DEADLINE = "service-deadline"  # service: batch dispatch on the
#                                      executor (hang = stalled planner)
SITE_SERVICE_QUEUE = "service-queue"  # service: request admission control

ALL_SITES: Tuple[str, ...] = (
    SITE_PLAN,
    SITE_CODEGEN,
    SITE_CACHE_PLAN,
    SITE_CACHE_CODEGEN,
    SITE_COLORING,
    SITE_SHRINKWRAP,
    SITE_WORKER,
    SITE_JIT,
    SITE_JIT3,
    SITE_SUITE_WORKER,
    SITE_STORE_READ,
    SITE_STORE_WRITE,
    SITE_STORE_LOCK,
    SITE_STORE_SCRUB,
    SITE_SERVICE_DEADLINE,
    SITE_SERVICE_QUEUE,
)

KINDS = ("raise", "hang", "corrupt", "kill")


class InjectedFault(RuntimeError):
    """Raised by a ``raise``-kind fault spec when its site is reached."""

    def __init__(self, site: str, key: Optional[str]):
        self.site = site
        self.key = key
        super().__init__(f"injected fault at site {site!r} (key={key!r})")


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``match`` restricts the spec to site consultations whose key equals
    it (``None`` matches any key); ``count`` is how many times the spec
    may fire (``None`` = unlimited).
    """

    site: str
    kind: str = "raise"
    match: Optional[str] = None
    count: Optional[int] = 1
    hang_seconds: float = 2.0

    def __post_init__(self):
        if self.site not in ALL_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{ALL_SITES}"
            )
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )


class FaultPlan:
    """A deterministic set of faults plus firing bookkeeping.

    ``fired`` records ``(site, key, kind)`` for every fault that fired,
    in firing order, so tests can assert exactly which faults landed.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        self.fired: List[Tuple[str, Optional[str], str]] = []
        self._remaining: List[Optional[int]] = [s.count for s in self.specs]
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------------

    @classmethod
    def seeded(
        cls,
        seed: int,
        sites: Sequence[str] = ALL_SITES,
        kinds: Sequence[str] = ("raise",),
        count: Optional[int] = 1,
    ) -> "FaultPlan":
        """One fault per site, kinds drawn deterministically from
        ``seed`` -- the CI chaos configuration."""
        rng = random.Random(seed)
        specs = [
            FaultSpec(site=site, kind=rng.choice(list(kinds)), count=count)
            for site in sites
        ]
        return cls(specs, seed=seed)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        with self._lock:
            self.specs.append(spec)
            self._remaining.append(spec.count)
        return self

    # -- consultation --------------------------------------------------------

    def _take(self, site: str, key: Optional[str], kinds) -> Optional[FaultSpec]:
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.site != site or spec.kind not in kinds:
                    continue
                if spec.match is not None and spec.match != key:
                    continue
                left = self._remaining[i]
                if left is not None and left <= 0:
                    continue
                if left is not None:
                    self._remaining[i] = left - 1
                self.fired.append((site, key, spec.kind))
                return spec
        return None

    def fire(self, site: str, key: Optional[str]) -> None:
        spec = self._take(site, key, ("raise", "hang", "kill"))
        if spec is None:
            return
        if spec.kind == "hang":
            time.sleep(spec.hang_seconds)
        elif spec.kind == "kill":
            if _IN_WORKER.flag:
                os._exit(13)
            # no worker process to kill: modelled as a no-op
        else:
            raise InjectedFault(site, key)

    def wants_corruption(self, site: str, key: Optional[str]) -> bool:
        return self._take(site, key, ("corrupt",)) is not None

    def fired_sites(self) -> List[str]:
        return [site for site, _, _ in self.fired]

    # -- pickling (the suite runner ships plans into workers) ----------------

    def __getstate__(self):
        with self._lock:
            return {
                "specs": list(self.specs),
                "seed": self.seed,
                "fired": list(self.fired),
                "_remaining": list(self._remaining),
            }

    def __setstate__(self, state):
        self.specs = state["specs"]
        self.seed = state["seed"]
        self.fired = state["fired"]
        self._remaining = state["_remaining"]
        self._lock = threading.Lock()

    def __repr__(self):
        return f"FaultPlan(seed={self.seed}, specs={self.specs!r})"


# -- the installed plan ------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


class _WorkerFlag(threading.local):
    flag = False


_IN_WORKER = _WorkerFlag()


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (``None`` uninstalls)."""
    global _ACTIVE
    _ACTIVE = plan


def clear() -> None:
    install(None)


def current_plan() -> Optional[FaultPlan]:
    return _ACTIVE


class active:
    """Context manager installing a plan for the ``with`` body."""

    def __init__(self, plan: Optional[FaultPlan]):
        self._plan = plan

    def __enter__(self) -> Optional[FaultPlan]:
        self._previous = _ACTIVE
        install(self._plan)
        return self._plan

    def __exit__(self, *exc):
        install(self._previous)
        return False


class worker_context:
    """Marks the current thread as a pool *worker process* context, which
    arms ``kill``-kind faults (they ``os._exit``)."""

    def __enter__(self):
        self._previous = _IN_WORKER.flag
        _IN_WORKER.flag = True
        return self

    def __exit__(self, *exc):
        _IN_WORKER.flag = self._previous
        return False


def check(site: str, key: Optional[str] = None) -> None:
    """Consult the installed plan at ``site``; no-op without a plan."""
    if _ACTIVE is not None:
        _ACTIVE.fire(site, key)


def corrupts(site: str, key: Optional[str] = None) -> bool:
    """True when an armed ``corrupt`` spec matches this cache site; the
    caller is then responsible for bit-rotting its stored entry."""
    if _ACTIVE is None:
        return False
    return _ACTIVE.wants_corruption(site, key)
