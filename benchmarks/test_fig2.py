"""Fig. 2 -- dependence of save placement on control-flow form.

The paper's hazard: a register used in two blocks where the naive
equations would insert two saves along one path.  Rather than add a new
CFG node, the range-extension repair propagates APP until the placement
is sound.  The benchmark builds the hazardous shape, checks the repair
engaged, and measures that the repaired program still beats the classic
entry/exit protocol on the path that avoids the uses.
"""

from conftest import once

from repro.pipeline import compile_program, O2, O2_SW
from repro.target.isa import MemKind

# cold(n): the hazardous shape -- a use region reachable twice, with an
# early exit that avoids it entirely (drives the conflict join at exit)
SRC = """
func work(x) { return x + 1; }
func cold(n) {
    if (n < 900) { return n; }           // hot early exit
    var v = n * 3;                        // callee-saved: spans 2 calls
    var w = work(v) + work(v + 1);
    if (n % 2 == 0) {
        var u = n * 5;                    // second region, same register
        w = w + work(u) + work(u + 1) + u;
    }
    return v + w;
}
func main() {
    var t = 0;
    for (var i = 0; i < 1000; i = i + 1) { t = t + cold(i); }
    print t;
}
"""


def test_fig2_range_extension(benchmark):
    def build_and_run():
        base = compile_program(SRC, O2).run(check_contracts=True)
        wrapped_prog = compile_program(SRC, O2_SW)
        wrapped = wrapped_prog.run(check_contracts=True)
        return base, wrapped_prog, wrapped

    base, wrapped_prog, wrapped = once(benchmark, build_and_run)
    assert base.output == wrapped.output

    plan = wrapped_prog.plan.plans["cold"]
    assert plan.wrapped, "shrink-wrap must engage on cold()"
    stats = plan.shrink_stats
    print(
        f"\nFig2: placement iterations={stats.iterations}, "
        f"APP blocks extended={stats.extended_blocks}"
    )
    # the paper: "this extension ... requires from one to two iterations"
    assert stats.iterations <= 4

    def sr(s):
        return (
            s.stores.get(MemKind.SAVE, 0)
            + s.loads.get(MemKind.RESTORE, 0)
            + s.loads.get(MemKind.SAVE, 0)
            + s.stores.get(MemKind.RESTORE, 0)
        )

    print(f"Fig2: save/restore ops entry-exit={sr(base)}, wrapped={sr(wrapped)}")
    # 90% of the invocations take the early exit: wrapping must win
    assert sr(wrapped) < sr(base)
