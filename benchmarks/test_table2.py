"""Table 2 -- caller-saved vs callee-saved registers under IPRA.

Regenerates the paper's Table 2: IPRA restricted to 7 caller-saved
registers (column D) or 7 callee-saved registers (column E), both
measured against the full-file -O2 baseline.

Expected shape: with only 7 registers most programs run *slower* than the
20-register baseline (negative reductions); caller-saved registers win
where register pressure is low (free use while registers last) and
callee-saved registers win where the save/restore migration up the call
graph pays off.
"""

import pytest

from conftest import compile_cached, once

from repro.benchsuite import (
    format_table2,
    load_benchmarks,
    run_benchmark,
)

BENCHES = load_benchmarks()
_ROWS = {}


@pytest.mark.parametrize("name", list(BENCHES))
def test_table2_row(benchmark, name):
    bench = BENCHES[name]
    result = once(
        benchmark,
        lambda: run_benchmark(bench, ("D", "E"), compile_fn=compile_cached),
    )
    _ROWS[name] = result
    # correctness already asserted inside run_benchmark (equal outputs);
    # sanity: with 7 registers nothing should get dramatically faster
    assert result.cycle_reduction("D") < 15.0
    assert result.cycle_reduction("E") < 15.0


def test_table2_shape_and_render(benchmark):
    once(benchmark, lambda: None)  # shape check; timing is in the rows
    assert len(_ROWS) == len(BENCHES), "row benchmarks must run first"
    results = [_ROWS[n] for n in BENCHES]
    print()
    print(format_table2(results))

    # most programs lose scalar traffic with only 7 registers
    worse_d = sum(1 for r in results if r.scalar_reduction("D") < 1.0)
    worse_e = sum(1 for r in results if r.scalar_reduction("E") < 1.0)
    assert worse_d >= len(results) * 0.5
    assert worse_e >= len(results) * 0.5

    # the two register classes genuinely behave differently: some spread
    # between D and E must exist across the suite
    spreads = [
        abs(r.scalar_reduction("D") - r.scalar_reduction("E"))
        for r in results
    ]
    assert max(spreads) > 5.0
