"""Profile-feedback extension (the paper's stated future work).

The paper attributes ccom's -O3 regression to saves propagated into a
call-graph region that dynamically runs hotter than the static loop-depth
weights predict, and proposes feeding execution profiles back to the
allocator.  This bench builds exactly that mismatch: the statically
"cold" straight-line path is dynamically hot, and a statically "hot"
loop almost never runs.  Profile-guided weights flip the allocator's
priorities toward the truly hot path.
"""

from conftest import once

from repro.pipeline import compile_program, O2, O3_SW
from repro.pipeline.profile import collect_block_profile, profile_guided_options

# `mixed` has two value populations: `a`/`b` used on the always-taken
# fast path, and `x`/`y`/`z` used inside a loop that runs only when
# n == 0 (never).  Static weights favour the loop; the profile corrects.
SRC = """
func burn(q) {
    if (q <= 0) { return 1; }
    return (q + burn(q - 3)) % 11;
}
func mixed(n, sel) {
    var a = n * 3 + 1;
    var b = n * 5 + 2;
    if (sel > 0) {
        // dynamically hot: executed on every call
        return burn(a % 4) + burn(b % 4) + a + b;
    }
    var acc = 0;
    var x = n + 1;
    var y = n + 2;
    var z = n + 3;
    for (var i = 0; i < n; i = i + 1) {
        // statically hot (loop weight), dynamically never reached
        acc = acc + burn(x % 4) + burn(y % 4) + burn(z % 4);
        x = x + 1; y = y + 2; z = z + 3;
    }
    return acc;
}
func main() {
    var t = 0;
    for (var k = 0; k < 300; k = k + 1) {
        t = t + mixed(k, 1);
    }
    print t;
}
"""


def test_profile_guided_allocation(benchmark):
    def build():
        static = compile_program(SRC, O3_SW)
        s_static = static.run(check_contracts=True)
        profile = collect_block_profile(SRC, O2)
        tuned = compile_program(SRC, profile_guided_options(O3_SW, profile))
        s_tuned = tuned.run(check_contracts=True)
        return s_static, s_tuned

    s_static, s_tuned = once(benchmark, build)
    assert s_static.output == s_tuned.output
    print(
        f"\nprofile feedback: scalar memops static-weights="
        f"{s_static.scalar_memops}, profile-guided={s_tuned.scalar_memops}; "
        f"cycles {s_static.cycles} -> {s_tuned.cycles}"
    )
    # the profile must never make things worse on the training input, and
    # on this adversarial shape it should strictly help
    assert s_tuned.scalar_memops <= s_static.scalar_memops
