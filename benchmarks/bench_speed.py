#!/usr/bin/env python
"""Toolchain speed benchmark: compile time and simulator throughput.

For every benchmark-suite program this measures

* ``compile_s`` -- wall-clock seconds for the full pipeline (parse,
  lower, allocate at O3_SW, codegen, link), and
* ``sim_cycles_per_s`` -- simulated machine cycles retired per wall-clock
  second of the pre-decoded interpreter loop.

Results land in ``benchmarks/BENCH_speed.json`` next to this script so a
checked-in baseline can be compared across commits.  ``--check`` runs a
fast smoke pass (every program compiles and simulates, throughput is
positive) without overwriting the baseline -- that is what CI runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_speed.py            # write baseline
    PYTHONPATH=src python benchmarks/bench_speed.py --check    # CI smoke pass
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchsuite import benchmark_names, load_benchmarks
from repro.pipeline import O3_SW, compile_program

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_speed.json"


def bench_one(name: str, source: str, repeats: int) -> dict:
    best_compile = None
    program = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        program = compile_program(source, O3_SW)
        dt = time.perf_counter() - t0
        best_compile = dt if best_compile is None else min(best_compile, dt)

    best_sim = None
    stats = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        stats = program.run()
        dt = time.perf_counter() - t0
        best_sim = dt if best_sim is None else min(best_sim, dt)

    return {
        "compile_s": round(best_compile, 4),
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "sim_s": round(best_sim, 4),
        "sim_cycles_per_s": int(stats.cycles / best_sim) if best_sim else 0,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--check", action="store_true",
        help="smoke-test every program once; do not rewrite the baseline",
    )
    ap.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per program (best-of, default 3)",
    )
    args = ap.parse_args(argv)

    repeats = 1 if args.check else max(1, args.repeats)
    benches = load_benchmarks()
    results = {}
    for name in benchmark_names():
        results[name] = bench_one(name, benches[name].source, repeats)
        r = results[name]
        print(
            f"{name:10s} compile {r['compile_s']:7.3f}s   "
            f"{r['cycles']:>10d} cycles   "
            f"{r['sim_cycles_per_s']:>12,d} cycles/s"
        )
        if r["cycles"] <= 0 or r["sim_cycles_per_s"] <= 0:
            print(f"FAIL: {name} produced no simulated work", file=sys.stderr)
            return 1

    total = {
        "compile_s": round(sum(r["compile_s"] for r in results.values()), 4),
        "cycles": sum(r["cycles"] for r in results.values()),
        "sim_s": round(sum(r["sim_s"] for r in results.values()), 4),
    }
    total["sim_cycles_per_s"] = (
        int(total["cycles"] / total["sim_s"]) if total["sim_s"] else 0
    )
    print(
        f"{'TOTAL':10s} compile {total['compile_s']:7.3f}s   "
        f"{total['cycles']:>10d} cycles   "
        f"{total['sim_cycles_per_s']:>12,d} cycles/s"
    )

    if not args.check:
        payload = {
            "config": "O3_SW",
            "python": sys.version.split()[0],
            "repeats": repeats,
            "programs": results,
            "total": total,
        }
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
