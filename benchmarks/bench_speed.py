#!/usr/bin/env python
"""Toolchain speed benchmark: compile time and simulator throughput.

For every benchmark-suite program this measures

* ``compile_s`` -- wall-clock seconds for the full pipeline (parse,
  lower, allocate at O3_SW, codegen, link),
* ``sim`` -- simulated machine cycles retired per wall-clock second on
  *all three* simulator tiers (the reference interpreter, the
  block-translating JIT, and the profile-guided tier-3 trace JIT),
  with every tier's RunStats asserted bit-identical on every program,
* ``parallel_suite`` -- wall-clock for a baseline-vs-C suite sweep, run
  serially on the interpreter and fanned out over a process pool on the
  JIT tier, with identical statistics required from both, and
* ``incremental`` -- cold vs warm recompile time through a
  ``repro.Compiler`` session after editing one procedure, with the warm
  executable checked bit-identical to a from-scratch compile, and
* ``store_warm`` -- a genuinely cold OS process warm-starting from a
  populated on-disk artifact store vs a fully cold storeless process
  (both measured as subprocess children), bit-identity required.

The baseline carries ``schema_version``; ``--check`` validates the
committed file against the current version and required scenario keys,
so a renamed or dropped scenario fails CI loudly instead of silently
vanishing from the record.

Results land in ``benchmarks/BENCH_speed.json`` next to this script so a
checked-in baseline can be compared across commits (engine cache
observability goes to ``BENCH_engine_stats.json`` alongside).
``--check`` runs a fast smoke pass -- every program compiles and
simulates, throughput is positive, the JIT tier clears its aggregate
speedup floor over the interpreter, and the warm/cold recompile speedup
stays above its floor -- without overwriting the baseline; that is what
CI runs.  (The parallel sweep is identity-checked but has no wall-clock
floor: CI machines may have a single core.)

Usage::

    PYTHONPATH=src python benchmarks/bench_speed.py            # write baseline
    PYTHONPATH=src python benchmarks/bench_speed.py --check    # CI smoke pass
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Compiler
from repro.benchsuite import benchmark_names, load_benchmarks, run_suite
from repro.engine.frontend import split_chunks
from repro.pipeline import O3_SW, compile_program
from repro.pipeline.profile import block_profile_of

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_speed.json"
STATS_PATH = Path(__file__).resolve().parent / "BENCH_engine_stats.json"

#: bump when scenarios are added/renamed; ``--check`` validates the
#: checked-in baseline against this so a scenario cannot silently
#: disappear from the record
SCHEMA_VERSION = 3

#: every scenario key the baseline must carry at SCHEMA_VERSION
REQUIRED_SCENARIOS = (
    "programs", "total", "parallel_suite", "incremental", "store_warm",
)

#: --check fails below this warm/cold speedup (the recorded baseline is
#: far higher; the floor only catches cache regressions, not CI jitter)
MIN_WARM_SPEEDUP = 3.0

#: --check fails when the JIT tier's aggregate simulation throughput
#: over the whole suite is below this multiple of the interpreter's
MIN_SIM_SPEEDUP = 3.0

#: --check fails when the tier-3 trace JIT's aggregate throughput is
#: below this multiple of the interpreter's (target is 10x; 7x is the
#: regression floor under CI jitter)
MIN_SIM3_SPEEDUP = 7.0

#: --check fails when a cold process with a warm disk store is not at
#: least this much faster than a fully cold storeless compile of the
#: suite (the baseline records >= 4x; 3x absorbs CI jitter)
MIN_STORE_SPEEDUP = 3.0


def edit_one_procedure(source: str, salt: int) -> str:
    """A one-procedure edit: touch the body of the middle function (the
    canonical rebuild-after-touching-one-file scenario -- the chunk's
    text changes, siblings stay byte-identical)."""
    split = split_chunks(source)
    assert split is not None, "benchmark sources must be chunkable"
    _, chunks = split
    chunk = chunks[len(chunks) // 2]
    brace = chunk.text.rfind("}")
    edited = chunk.text[:brace] + f"/* edit {salt} */ " + chunk.text[brace:]
    return source.replace(chunk.text, edited, 1)


def bench_incremental(name: str, source: str, repeats: int) -> dict:
    """Cold session compile vs warm recompile after one-procedure edit."""
    best_cold = None
    best_warm = None
    warm_program = None
    session = None
    edited = None
    for i in range(repeats):
        session = Compiler(O3_SW)
        session.add_source(("main", source))
        t0 = time.perf_counter()
        session.compile()
        cold = time.perf_counter() - t0

        edited = edit_one_procedure(source, i)
        session.add_source(("main", edited))
        t0 = time.perf_counter()
        warm_program = session.compile()
        warm = time.perf_counter() - t0
        best_cold = cold if best_cold is None else min(best_cold, cold)
        best_warm = warm if best_warm is None else min(best_warm, warm)

    # the cache must only skip work, never change output
    reference = compile_program(("main", edited), O3_SW)
    warm_instrs = [repr(i) for i in warm_program.executable.instrs]
    ref_instrs = [repr(i) for i in reference.executable.instrs]
    if warm_instrs != ref_instrs:
        raise AssertionError(f"{name}: warm executable differs from cold")

    return {
        "cold_s": round(best_cold, 4),
        "warm_s": round(best_warm, 4),
        "speedup": round(best_cold / best_warm, 1) if best_warm else 0.0,
    }, session.stats.records


def bench_one(name: str, source: str, repeats: int) -> dict:
    best_compile = None
    program = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        program = compile_program(source, O3_SW)
        dt = time.perf_counter() - t0
        best_compile = dt if best_compile is None else min(best_compile, dt)

    # all tiers must retire the exact same execution
    stats = program.run(sim_tier="interp")
    jit_stats = program.run(sim_tier="jit")  # also warms the translation
    if jit_stats != stats:
        raise AssertionError(f"{name}: JIT RunStats differ from interpreter")
    block_profile_of(program)                # attaches; escalates "auto"
    jit3_stats = program.run(sim_tier="jit3")  # warms the trace translation
    if jit3_stats != stats:
        raise AssertionError(
            f"{name}: tier-3 RunStats differ from interpreter"
        )

    best_interp = None
    best_jit = None
    best_jit3 = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        program.run(sim_tier="interp")
        dt = time.perf_counter() - t0
        best_interp = dt if best_interp is None else min(best_interp, dt)
    for _ in range(repeats):
        t0 = time.perf_counter()
        program.run(sim_tier="jit")
        dt = time.perf_counter() - t0
        best_jit = dt if best_jit is None else min(best_jit, dt)
    for _ in range(repeats):
        t0 = time.perf_counter()
        program.run(sim_tier="jit3")
        dt = time.perf_counter() - t0
        best_jit3 = dt if best_jit3 is None else min(best_jit3, dt)

    return {
        "compile_s": round(best_compile, 4),
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "sim_interp_s": round(best_interp, 4),
        "sim_jit_s": round(best_jit, 4),
        "sim_jit3_s": round(best_jit3, 4),
        "interp_cycles_per_s": (
            int(stats.cycles / best_interp) if best_interp else 0
        ),
        "jit_cycles_per_s": int(stats.cycles / best_jit) if best_jit else 0,
        "jit3_cycles_per_s": (
            int(stats.cycles / best_jit3) if best_jit3 else 0
        ),
        "jit_speedup": round(best_interp / best_jit, 2) if best_jit else 0.0,
        "jit3_speedup": (
            round(best_interp / best_jit3, 2) if best_jit3 else 0.0
        ),
        "jit3_inlined_calls": jit3_stats.jit3["inlined_calls"],
        "jit3_linked_loops": jit3_stats.jit3["linked_loops"],
    }


def bench_parallel_suite(jobs: int) -> dict:
    """Serial interpreter sweep vs process-parallel JIT sweep over the
    full suite (baseline + config C), statistics required identical."""
    t0 = time.perf_counter()
    serial = run_suite(("C",), sim_tier="interp", jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_suite(("C",), sim_tier="jit", jobs=jobs)
    parallel_s = time.perf_counter() - t0

    for a, b in zip(serial, parallel):
        if a.stats != b.stats:
            raise AssertionError(
                f"{a.benchmark.name}: parallel JIT sweep statistics "
                f"differ from the serial interpreter sweep"
            )
    return {
        "jobs": jobs,
        "serial_interp_s": round(serial_s, 4),
        "parallel_jit_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else 0.0,
    }


def bench_store_warm(repeats: int) -> dict:
    """Fully cold process vs cold process + warm artifact store.

    Every measurement is a real child process (the warmstart child
    protocol), so "cold" genuinely means no in-memory caches; only the
    disk store distinguishes the two sides.  The warm-started builds
    must be bit-identical to the storeless reference's.
    """
    import tempfile

    from repro.tools.warmstart import _spawn_child

    configs = ["C"]
    best_cold = None
    cold_digests = None
    for _ in range(repeats):
        rep = _spawn_child(None, configs, None)
        if best_cold is None or rep["seconds"] < best_cold:
            best_cold = rep["seconds"]
        cold_digests = rep["digests"]

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as store:
        _spawn_child(store, configs, None)   # process A: warms the store
        best_warm = None
        last = None
        for _ in range(repeats):
            rep = _spawn_child(store, configs, None)
            if best_warm is None or rep["seconds"] < best_warm:
                best_warm = rep["seconds"]
            last = rep

    if last["digests"] != cold_digests:
        raise AssertionError(
            "store-warm builds are not bit-identical to the storeless "
            "cold reference"
        )
    st = last["store"]
    lookups = st["hits"] + st["misses"]
    return {
        "configs": configs,
        "programs": len(cold_digests),
        "cold_process_s": round(best_cold, 4),
        "store_warm_s": round(best_warm, 4),
        "speedup": round(best_cold / best_warm, 1) if best_warm else 0.0,
        "store_hit_rate": round(st["hits"] / lookups, 4) if lookups else 0.0,
        "store_corruptions": st["corruptions"],
    }


def validate_baseline() -> list:
    """--check: the committed baseline must carry every scenario at the
    current schema version -- a renamed or dropped scenario fails loudly
    instead of silently vanishing from the record."""
    if not RESULT_PATH.exists():
        return [f"baseline {RESULT_PATH.name} is missing"]
    try:
        data = json.loads(RESULT_PATH.read_text())
    except ValueError as exc:
        return [f"baseline {RESULT_PATH.name} is not valid JSON: {exc}"]
    errors = []
    found = data.get("schema_version")
    if found != SCHEMA_VERSION:
        errors.append(
            f"baseline schema_version {found!r} != expected "
            f"{SCHEMA_VERSION} (regenerate the baseline)"
        )
    for key in REQUIRED_SCENARIOS:
        if key not in data:
            errors.append(
                f"baseline is missing required scenario {key!r}"
            )
    return errors


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--check", action="store_true",
        help="smoke-test every program once; do not rewrite the baseline",
    )
    ap.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per program (best-of, default 3)",
    )
    args = ap.parse_args(argv)

    if args.check:
        schema_errors = validate_baseline()
        if schema_errors:
            for err in schema_errors:
                print(f"FAIL: {err}", file=sys.stderr)
            return 1

    repeats = 1 if args.check else max(1, args.repeats)
    benches = load_benchmarks()
    results = {}
    for name in benchmark_names():
        results[name] = bench_one(name, benches[name].source, repeats)
        r = results[name]
        print(
            f"{name:10s} compile {r['compile_s']:7.3f}s   "
            f"{r['cycles']:>10d} cycles   "
            f"interp {r['interp_cycles_per_s']:>12,d} c/s   "
            f"jit {r['jit_speedup']:5.2f}x   "
            f"jit3 {r['jit3_speedup']:5.2f}x"
        )
        if r["cycles"] <= 0 or r["interp_cycles_per_s"] <= 0:
            print(f"FAIL: {name} produced no simulated work", file=sys.stderr)
            return 1

    total = {
        "compile_s": round(sum(r["compile_s"] for r in results.values()), 4),
        "cycles": sum(r["cycles"] for r in results.values()),
        "sim_interp_s": round(
            sum(r["sim_interp_s"] for r in results.values()), 4
        ),
        "sim_jit_s": round(sum(r["sim_jit_s"] for r in results.values()), 4),
        "sim_jit3_s": round(
            sum(r["sim_jit3_s"] for r in results.values()), 4
        ),
    }
    total["interp_cycles_per_s"] = (
        int(total["cycles"] / total["sim_interp_s"])
        if total["sim_interp_s"] else 0
    )
    total["jit_cycles_per_s"] = (
        int(total["cycles"] / total["sim_jit_s"]) if total["sim_jit_s"] else 0
    )
    total["jit3_cycles_per_s"] = (
        int(total["cycles"] / total["sim_jit3_s"])
        if total["sim_jit3_s"] else 0
    )
    total["jit_speedup"] = (
        round(total["sim_interp_s"] / total["sim_jit_s"], 2)
        if total["sim_jit_s"] else 0.0
    )
    total["jit3_speedup"] = (
        round(total["sim_interp_s"] / total["sim_jit3_s"], 2)
        if total["sim_jit3_s"] else 0.0
    )
    print(
        f"{'TOTAL':10s} compile {total['compile_s']:7.3f}s   "
        f"{total['cycles']:>10d} cycles   "
        f"interp {total['interp_cycles_per_s']:>12,d} c/s   "
        f"jit {total['jit_speedup']:5.2f}x   "
        f"jit3 {total['jit3_speedup']:5.2f}x"
    )
    if total["jit_speedup"] < MIN_SIM_SPEEDUP:
        print(
            f"FAIL: aggregate JIT speedup {total['jit_speedup']}x is below "
            f"the {MIN_SIM_SPEEDUP}x regression floor",
            file=sys.stderr,
        )
        return 1
    if total["jit3_speedup"] < MIN_SIM3_SPEEDUP:
        print(
            f"FAIL: aggregate tier-3 speedup {total['jit3_speedup']}x is "
            f"below the {MIN_SIM3_SPEEDUP}x regression floor",
            file=sys.stderr,
        )
        return 1

    # process-parallel suite sweep on the JIT tier vs serial interpreter
    parallel = bench_parallel_suite(jobs=os.cpu_count() or 1)
    print(
        f"{'SUITE':10s} serial-interp {parallel['serial_interp_s']:7.3f}s   "
        f"parallel-jit({parallel['jobs']}) "
        f"{parallel['parallel_jit_s']:7.3f}s   "
        f"speedup {parallel['speedup']:5.2f}x"
    )

    # warm-vs-cold incremental recompile through a Compiler session
    from repro.engine.stats import EngineStats

    engine_stats = EngineStats()
    incremental = {}
    for name in benchmark_names():
        incremental[name], records = bench_incremental(
            name, benches[name].source, repeats
        )
        engine_stats.records.extend(records)
        r = incremental[name]
        print(
            f"{name:10s} cold {r['cold_s']:7.3f}s   warm {r['warm_s']:7.3f}s"
            f"   speedup {r['speedup']:6.1f}x"
        )
    inc_total = {
        "cold_s": round(sum(r["cold_s"] for r in incremental.values()), 4),
        "warm_s": round(sum(r["warm_s"] for r in incremental.values()), 4),
    }
    inc_total["speedup"] = (
        round(inc_total["cold_s"] / inc_total["warm_s"], 1)
        if inc_total["warm_s"]
        else 0.0
    )
    print(
        f"{'TOTAL':10s} cold {inc_total['cold_s']:7.3f}s   "
        f"warm {inc_total['warm_s']:7.3f}s   "
        f"speedup {inc_total['speedup']:6.1f}x"
    )
    if inc_total["speedup"] < MIN_WARM_SPEEDUP:
        print(
            f"FAIL: warm recompile speedup {inc_total['speedup']}x is below "
            f"the {MIN_WARM_SPEEDUP}x regression floor",
            file=sys.stderr,
        )
        return 1

    # cold process + warm disk store vs fully cold, both real processes
    store_warm = bench_store_warm(repeats)
    print(
        f"{'STORE':10s} cold-proc {store_warm['cold_process_s']:7.3f}s   "
        f"store-warm {store_warm['store_warm_s']:7.3f}s   "
        f"speedup {store_warm['speedup']:6.1f}x   "
        f"hit-rate {store_warm['store_hit_rate']:.1%}"
    )
    if store_warm["speedup"] < MIN_STORE_SPEEDUP:
        print(
            f"FAIL: store-warm speedup {store_warm['speedup']}x is below "
            f"the {MIN_STORE_SPEEDUP}x regression floor",
            file=sys.stderr,
        )
        return 1
    if store_warm["store_corruptions"]:
        print(
            f"FAIL: warm store reported "
            f"{store_warm['store_corruptions']} corrupt entries",
            file=sys.stderr,
        )
        return 1

    if not args.check:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "config": "O3_SW",
            "python": sys.version.split()[0],
            "repeats": repeats,
            "programs": results,
            "total": total,
            "parallel_suite": parallel,
            "incremental": {"programs": incremental, "total": inc_total},
            "store_warm": store_warm,
        }
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
        STATS_PATH.write_text(engine_stats.to_json() + "\n")
        print(f"wrote {STATS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
