"""Fig. 3 -- effects of shrink-wrap depend on the path taken.

The paper's scenario: two independent conditional regions use a
callee-saved register.  Of the four equally likely paths, shrink-wrapping
wins on one (neither region executes: no save at all vs the classic
entry save), loses on one (both regions execute: two save/restore pairs
vs one), and washes on the remaining two (one pair either way).
"""

import pytest

from conftest import once

from repro.pipeline import compile_program, O2, O2_SW
from repro.target.isa import MemKind

SRC_TEMPLATE = """
func work(x) {{ return x + 1; }}
func f(c1, c2) {{
    var r = 0;
    if (c1 > 0) {{
        var v1 = c1 * 3;
        r = r + work(v1) + work(v1 + 1) + v1;
    }}
    if (c2 > 0) {{
        var v2 = c2 * 5;
        r = r + work(v2) + work(v2 + 1) + v2;
    }}
    return r;
}}
func main() {{
    print f({c1}, {c2});
}}
"""


def sr_ops(stats):
    return (
        stats.stores.get(MemKind.SAVE, 0)
        + stats.loads.get(MemKind.RESTORE, 0)
        + stats.loads.get(MemKind.SAVE, 0)
        + stats.stores.get(MemKind.RESTORE, 0)
    )


def measure(c1, c2):
    src = SRC_TEMPLATE.format(c1=c1, c2=c2)
    base_prog = compile_program(src, O2)
    sw_prog = compile_program(src, O2_SW)
    base = base_prog.run(check_contracts=True)
    sw = sw_prog.run(check_contracts=True)
    assert base.output == sw.output
    # exclude the fixed ra traffic from the comparison (identical in both)
    ra = 2 * base.calls
    return sr_ops(base) - ra, sr_ops(sw) - ra


def test_fig3_four_paths(benchmark):
    results = once(
        benchmark,
        lambda: {
            (c1, c2): measure(c1, c2)
            for c1 in (0, 1) for c2 in (0, 1)
        },
    )
    print()
    effects = {}
    for (c1, c2), (base_sr, sw_sr) in sorted(results.items()):
        effect = base_sr - sw_sr  # positive = shrink-wrap saved work
        effects[(c1, c2)] = effect
        print(
            f"Fig3 path (c1={c1}, c2={c2}): save/restore "
            f"entry-exit={base_sr}, wrapped={sw_sr}, effect={effect:+d}"
        )

    # the paper's 25/25/50 split: one positive, one negative, two zero
    assert effects[(0, 0)] > 0, "no-region path must win under shrink-wrap"
    assert effects[(1, 1)] < 0, "both-regions path must lose"
    assert effects[(0, 1)] == 0
    assert effects[(1, 0)] == 0

    # and the expected value over equiprobable paths is exactly neutral
    # only if the win and the loss cancel; report it either way
    net = sum(effects.values())
    print(f"Fig3 net effect over the 4 equiprobable paths: {net:+d}")
