"""Table 1 -- effects of the techniques on the 13 benchmark programs.

Regenerates the paper's Table 1: percentage reduction in executed cycles
(columns I) and in scalar loads/stores (columns II) for

* A = -O2 with shrink-wrap        (isolated shrink-wrap effect)
* B = -O3 without shrink-wrap     (isolated IPRA effect)
* C = -O3 with shrink-wrap        (both techniques)

against the baseline -O2 without shrink-wrap, plus cycles/call.

Expected shape (the substrate differs, so absolute numbers will not match
the paper): A barely moves cycles but never increases scalar traffic;
B/C give large scalar reductions on the small call-intensive programs and
much smaller ones on the big tall-call-graph programs; C >= B on most
programs.
"""

import pytest

from conftest import compile_cached, once

from repro.benchsuite import (
    BenchResult,
    format_table1,
    load_benchmarks,
    run_benchmark,
)

BENCHES = load_benchmarks()
_ROWS = {}


@pytest.mark.parametrize("name", list(BENCHES))
def test_table1_row(benchmark, name):
    bench = BENCHES[name]
    result: BenchResult = once(
        benchmark,
        lambda: run_benchmark(bench, ("A", "B", "C"), compile_fn=compile_cached),
    )
    _ROWS[name] = result

    # paper claims: "Column IIA shows that this optimization always
    # reduces memory accesses"
    assert result.scalar_reduction("A") >= -0.5
    # shrink-wrap alone barely moves cycles
    assert abs(result.cycle_reduction("A")) < 8.0
    # IPRA never blows up the run time
    assert result.cycle_reduction("B") > -10.0
    assert result.cycle_reduction("C") > -10.0
    # cycles/call in the call-intensive range the paper reports (31-150)
    assert 10 <= result.cycles_per_call() <= 300


def test_table1_shape_and_render(benchmark):
    once(benchmark, lambda: None)  # shape check; timing is in the rows
    assert len(_ROWS) == len(BENCHES), "row benchmarks must run first"
    results = [_ROWS[n] for n in BENCHES]
    print()
    print(format_table1(results))

    # IPRA (B) reduces scalar traffic for the majority of programs
    b_positive = sum(1 for r in results if r.scalar_reduction("B") > 0)
    assert b_positive >= len(results) * 0.6

    # combining shrink-wrap (C) is >= B for most programs (paper: "the
    # extents of the improvements obtainable seem to justify the
    # inclusion of shrink-wrap optimization")
    c_at_least_b = sum(
        1 for r in results
        if r.scalar_reduction("C") >= r.scalar_reduction("B") - 1.0
    )
    assert c_at_least_b >= len(results) * 0.6

    # the small call-intensive programs benefit more from IPRA than the
    # largest ones (paper: "the improvement is more pronounced for the
    # smaller benchmarks")
    small = [r for r in results if r.benchmark.name in ("nim", "calcc", "dhrystone")]
    large = [r for r in results if r.benchmark.name in ("as1", "upas", "uopt")]
    small_avg = sum(r.scalar_reduction("B") for r in small) / len(small)
    large_avg = sum(r.scalar_reduction("B") for r in large) / len(large)
    assert small_avg > large_avg
