"""Benchmark harness configuration.

Each experiment regenerates one of the paper's tables or figures.  The
compile-and-simulate pipeline is deterministic, so every benchmark runs a
single round (``pedantic``); pytest-benchmark reports the pipeline time
while the printed tables carry the paper's actual metrics.

Shared helpers (``once``, the session-wide compile cache) live in
``tests/helpers.py`` so this directory and ``tests/`` use one
definition; this conftest only wires up the import path and re-exports
them for the benchmark modules.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "tests"))

from helpers import compile_cached, once, run_cached  # noqa: E402,F401