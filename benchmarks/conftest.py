"""Benchmark harness configuration.

Each experiment regenerates one of the paper's tables or figures.  The
compile-and-simulate pipeline is deterministic, so every benchmark runs a
single round (``pedantic``); pytest-benchmark reports the pipeline time
while the printed tables carry the paper's actual metrics.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
