"""Fig. 4 -- where to insert saves and restores in the call graph.

The paper's trade-off: procedures p and r both use register 1.  The
save/restore may sit around p's call to q (good when the call to q is
rare) or at r's entry/exit (good when the call to r is rare).  Without
profile data the compiler cannot know which; the Section 6 strategy picks
per-procedure placement from the static shape.

The benchmark builds both frequency regimes and reports the save/restore
traffic under B (-O3, propagate-always) and C (-O3+SW, Section 6
strategy), demonstrating the frequency dependence the paper describes.
"""

from conftest import once

from repro.pipeline import compile_program, O3, O3_SW
from repro.target.isa import MemKind

# regime 1: q called rarely, r called often (inside q's loop... inverted
# below).  p holds a value across its call to q; r burns registers.
SRC_TEMPLATE = """
func r_proc(x) {{
    var a = x + 1;
    var b = x * 2;
    var c = a + b;
    var d = hot(a) + hot(b) + hot(c);
    return a + b + c + d;
}}
func hot(v) {{ return v * 2 + 1; }}
func q_proc(n) {{
    var s = 0;
    for (var i = 0; i < {r_calls}; i = i + 1) {{ s = s + r_proc(i); }}
    return s;
}}
func p_proc(n) {{
    var keep = n * 7 + 3;           // live across the call to q
    var s = 0;
    for (var i = 0; i < {q_calls}; i = i + 1) {{ s = s + q_proc(i); }}
    return keep + s;
}}
func main() {{
    print p_proc(5);
}}
"""


def sr_ops(stats):
    return (
        stats.stores.get(MemKind.SAVE, 0)
        + stats.loads.get(MemKind.RESTORE, 0)
        + stats.loads.get(MemKind.SAVE, 0)
        + stats.stores.get(MemKind.RESTORE, 0)
    )


def measure(q_calls, r_calls):
    src = SRC_TEMPLATE.format(q_calls=q_calls, r_calls=r_calls)
    out = {}
    for tag, options in (("B", O3), ("C", O3_SW)):
        stats = compile_program(src, options).run(check_contracts=True)
        out[tag] = (sr_ops(stats), stats.cycles, tuple(stats.output))
    assert out["B"][2] == out["C"][2]
    return out


def test_fig4_call_graph_placement(benchmark):
    results = once(
        benchmark,
        lambda: {
            "q rare, r hot": measure(q_calls=2, r_calls=100),
            "q hot, r rare": measure(q_calls=100, r_calls=2),
        },
    )
    print()
    for regime, data in results.items():
        print(
            f"Fig4 [{regime}]: save/restore B={data['B'][0]} "
            f"(cycles {data['B'][1]}), C={data['C'][0]} "
            f"(cycles {data['C'][1]})"
        )

    # The frequency dependence must be visible: the relative cost of the
    # save placement differs between the two regimes.
    rare_r = results["q hot, r rare"]
    hot_r = results["q rare, r hot"]
    ratio_rare = rare_r["C"][0] / max(1, rare_r["B"][0])
    ratio_hot = hot_r["C"][0] / max(1, hot_r["B"][0])
    print(f"Fig4 C/B save-restore ratio: r-rare={ratio_rare:.2f}, "
          f"r-hot={ratio_hot:.2f}")
    assert ratio_rare != ratio_hot or rare_r["B"][0] != hot_r["B"][0]
