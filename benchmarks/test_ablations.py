"""Ablations of the design choices DESIGN.md calls out.

* Section 6 combining (closed procedures wrap-and-hide vs always
  propagate callee-saved saves upward);
* the Fig. 1 tie-break (prefer registers already used in the call tree);
* loop smearing (APP propagated over whole loops so wrapped regions never
  sit inside one).

Each ablation runs a slice of the benchmark suite and reports the change
in scalar memory traffic.
"""

import pytest

from conftest import once

from repro.benchsuite import load_benchmarks
from repro.pipeline import compile_program, O3_SW

BENCHES = load_benchmarks()
PROGRAMS = ["nim", "calcc", "pf", "upas"]


def scalar_memops(name, options):
    bench = BENCHES[name]
    return compile_program(bench.source, options).run().scalar_memops


@pytest.mark.parametrize("name", PROGRAMS)
def test_ablate_section6_combining(benchmark, name):
    base, ablated = once(
        benchmark,
        lambda: (
            scalar_memops(name, O3_SW),
            scalar_memops(name, O3_SW.with_(combine=False)),
        ),
    )
    delta = 100.0 * (ablated - base) / max(1, base)
    print(f"\n{name}: scalar memops with Section-6 combining {base}, "
          f"without {ablated} ({delta:+.1f}%)")
    # combining never needs to lose much; it usually wins
    assert base <= ablated * 1.10


@pytest.mark.parametrize("name", PROGRAMS)
def test_ablate_subtree_tie_break(benchmark, name):
    base, ablated = once(
        benchmark,
        lambda: (
            scalar_memops(name, O3_SW),
            scalar_memops(name, O3_SW.with_(prefer_subtree_reg=False)),
        ),
    )
    delta = 100.0 * (ablated - base) / max(1, base)
    print(f"\n{name}: scalar memops with Fig.1 tie-break {base}, "
          f"without {ablated} ({delta:+.1f}%)")
    assert base <= ablated * 1.15


def test_ablate_loop_smearing(benchmark):
    # a register region inside a hot loop: without smearing the wrapped
    # save/restore executes once per iteration
    # `work` is recursive, hence open: it clobbers every caller-saved
    # register, so the loop values need callee-saved registers and the
    # wrapped region sits inside the loop unless smearing hoists it
    src = """
    func work(x) {
        if (x <= 0) { return 1; }
        return (x + work(x - 2)) % 7;
    }
    func hot(n) {
        var total = 0;
        for (var i = 0; i < n; i = i + 1) {
            if (i % 8 == 0) {
                var v = i * 3;
                total = total + work(v % 5) + work((v + 1) % 5) + v;
            }
        }
        return total;
    }
    func main() { print hot(400); }
    """

    def measure():
        smeared = compile_program(src, O3_SW).run(check_contracts=True)
        raw = compile_program(
            src, O3_SW.with_(smear_loops=False)
        ).run(check_contracts=True)
        assert smeared.output == raw.output
        return smeared, raw

    smeared, raw = once(benchmark, measure)
    print(f"\nloop smearing: save/restore {smeared.save_restore_memops} "
          f"(smeared) vs {raw.save_restore_memops} (raw placement)")
    # smearing must prevent per-iteration save/restore blow-up
    assert smeared.save_restore_memops <= raw.save_restore_memops
