"""Mod/ref globals extension (Wall-flavoured, see DESIGN.md §6).

The paper register-allocates globals only within single procedures; this
extension uses the same bottom-up pass to summarise which globals each
call subtree touches, letting callers keep a global register-cached
across calls that provably never reference it.
"""

from conftest import once

from repro.pipeline import compile_program, O3_SW

SRC = """
var accum = 0;
var calls = 0;

func pure_math(x) { return x * x + 3 * x + 7; }
func more_math(x) { return pure_math(x) - pure_math(x - 1); }

func hot_loop(n) {
    // accum is read/written around calls whose subtrees never touch it
    for (var i = 0; i < n; i = i + 1) {
        accum = accum + more_math(i) % 100;
        accum = accum - pure_math(i) % 10;
    }
    return accum;
}

func main() {
    print hot_loop(500);
    print accum;
}
"""


def test_modref_global_caching(benchmark):
    def build():
        plain = compile_program(SRC, O3_SW)
        cached = compile_program(SRC, O3_SW.with_(ipra_globals=True))
        s_plain = plain.run(check_contracts=True)
        s_cached = cached.run(check_contracts=True)
        return plain, cached, s_plain, s_cached

    plain, cached, s_plain, s_cached = once(benchmark, build)
    assert s_plain.output == s_cached.output

    # the extension must actually register-cache `accum` in hot_loop
    hot = cached.plan.plans["hot_loop"].alloc
    cached_globals = [
        str(v) for v in hot.assignment if v.name == "accum"
    ]
    assert cached_globals, "accum should be register-cached across calls"

    print(
        f"\nmod/ref globals: scalar memops {s_plain.scalar_memops} -> "
        f"{s_cached.scalar_memops} "
        f"({100.0 * (s_plain.scalar_memops - s_cached.scalar_memops) / s_plain.scalar_memops:.1f}% removed); "
        f"cycles {s_plain.cycles} -> {s_cached.cycles}"
    )
    assert s_cached.scalar_memops < s_plain.scalar_memops
    assert s_cached.cycles <= s_plain.cycles
