"""Fig. 1 -- re-use of a register in simultaneously active procedures.

The paper's figure: procedures p and q are active at the same time, yet
the same register serves variables in both because their ranges do not
span the call; with equal priorities the allocator prefers registers
already used in the call tree, minimising registers per call tree.

The benchmark measures the whole-tree register count and the executed
save/restore traffic with and without the tie-break.
"""

from conftest import once

from repro.interproc import PlanOptions, plan_program
from repro.ir import lower_module, optimize_module
from repro.frontend import analyze, parse
from repro.pipeline import compile_program, O3
from repro.target.isa import MemKind
from repro.target.registers import FULL_FILE

SRC = """
func q(y) {
    var c = y * 2 + 1;
    var d = c * 3 - y;
    return c + d;
}
func p(x) {
    var a = x + 1;      // dead before the call to q (like Fig. 1's a)
    var t = q(a);
    var b = t + 2;      // born after the call       (like Fig. 1's b)
    return b;
}
func main() {
    var s = 0;
    for (var i = 0; i < 200; i = i + 1) { s = s + p(i); }
    print s;
}
"""


def tree_register_count(prefer: bool) -> int:
    mod = lower_module(analyze(parse(SRC, "fig1")))
    optimize_module(mod)
    plan = plan_program(
        mod,
        PlanOptions(
            register_file=FULL_FILE, ipra=True, prefer_subtree_reg=prefer
        ),
    )
    mask = (
        plan.plans["p"].alloc.own_assigned_mask
        | plan.plans["q"].alloc.own_assigned_mask
    )
    return bin(mask).count("1")


def test_fig1_register_reuse(benchmark):
    stats = once(
        benchmark,
        lambda: compile_program(SRC, O3).run(check_contracts=True),
    )
    # no register save/restore beyond the ra protocol is executed
    save_ops = (
        stats.stores.get(MemKind.SAVE, 0) + stats.loads.get(MemKind.RESTORE, 0)
    )
    ra_ops = 2 * stats.calls  # worst case: every frame saves/restores ra
    assert save_ops <= ra_ops

    with_pref = tree_register_count(prefer=True)
    without_pref = tree_register_count(prefer=False)
    print(
        f"\nFig1: call-tree registers with tie-break={with_pref}, "
        f"without={without_pref}; save/restore ops executed={save_ops}"
    )
    assert with_pref <= without_pref
